// Streaming-graph battery (ROADMAP item 3): DeltaGraph compaction as a pure
// function of the staged edge set, warm/incremental refresh bit-equality
// against from-scratch CPU baselines, device-path ingestion vs host staging,
// the solo-vs-shared / shard-matrix bit-identity guarantee for a mutating
// session, and scheduler mutation epochs gating post-delta queries.
#include "stream/stream.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/baseline.hpp"
#include "graph/generators.hpp"
#include "serve/scheduler.hpp"

namespace updown::stream {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (old) old_ = old;
    if (value) ::setenv(name, value, 1);
    else ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) ::setenv(name_.c_str(), old_.c_str(), 1);
    else ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

std::vector<Edge> edges_of(const Graph& g) {
  std::vector<Edge> es;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (const VertexId v : g.neighbors_of(u)) es.emplace_back(u, v);
  return es;
}

/// From-scratch oracle graph: the old edge set plus the delta records through
/// Graph::from_edges — exactly the set semantics compaction must reproduce.
Graph apply_delta(const Graph& g, const std::vector<tform::EdgeRecord>& recs) {
  std::vector<Edge> es = edges_of(g);
  for (const tform::EdgeRecord& r : recs) es.emplace_back(r.src, r.dst);
  return Graph::from_edges(g.num_vertices(), std::move(es), false);
}

/// Deterministic pseudo-random delta batch over `n` vertices.
std::vector<tform::EdgeRecord> delta_recs(VertexId n, std::uint64_t count,
                                          std::uint64_t seed) {
  std::vector<tform::EdgeRecord> recs;
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  const auto next = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  for (std::uint64_t i = 0; i < count; ++i)
    recs.push_back({next() % n, next() % n, i % 4});
  return recs;
}

void expect_rank_bits(const std::vector<double>& got, const std::vector<double>& want,
                      const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t v = 0; v < want.size(); ++v)
    ASSERT_EQ(std::bit_cast<Word>(got[v]), std::bit_cast<Word>(want[v]))
        << what << " diverged at vertex " << v;
}

// ---------------------------------------------------------------------------
// DeltaGraph: host-side overlay + compaction semantics (no machine).
// ---------------------------------------------------------------------------

TEST(DeltaGraph, CompactionMatchesFromEdgesOnBothSides) {
  const Graph base = rmat(6, {}, 5);
  const VertexId n = base.num_vertices();
  DeltaGraph dg(base);

  // The constructor's reverse CSR is from_edges over the reversed edge list.
  std::vector<Edge> rev;
  for (const auto& [u, v] : edges_of(base)) rev.emplace_back(v, u);
  const Graph rbase = Graph::from_edges(n, rev, false);
  EXPECT_EQ(dg.rcsr().offsets(), rbase.offsets());
  EXPECT_EQ(dg.rcsr().neighbors(), rbase.neighbors());

  // Two interleaved batches, with duplicates and a self-loop mixed in.
  const auto recs = delta_recs(n, 30, 3);
  const auto b0 = dg.begin_batch();
  const auto b1 = dg.begin_batch();
  std::uint64_t staged = 0;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    dg.stage(i % 2 ? b1 : b0, recs[i].src, recs[i].dst);
    ++staged;
  }
  dg.stage(b0, recs[0].src, recs[0].dst);  // duplicate, dropped at compaction
  dg.stage(b1, 7, 7);                      // self-loop, dropped at compaction
  staged += 2;
  EXPECT_EQ(dg.staged_edges(), staged);

  const DeltaGraph::CompactionResult cr = dg.compact();
  auto all = recs;
  all.push_back({7, 7, 0});
  const Graph post = apply_delta(base, all);
  EXPECT_EQ(dg.csr().offsets(), post.offsets());
  EXPECT_EQ(dg.csr().neighbors(), post.neighbors());
  std::vector<Edge> prev;
  for (const auto& [u, v] : edges_of(post)) prev.emplace_back(v, u);
  const Graph rpost = Graph::from_edges(n, prev, false);
  EXPECT_EQ(dg.rcsr().offsets(), rpost.offsets());
  EXPECT_EQ(dg.rcsr().neighbors(), rpost.neighbors());

  // Touched lists: exactly the vertices whose adjacency changed, ascending.
  std::vector<VertexId> want_fwd;
  for (VertexId u = 0; u < n; ++u) {
    const auto a = base.neighbors_of(u);
    const auto b = post.neighbors_of(u);
    if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) want_fwd.push_back(u);
  }
  EXPECT_EQ(cr.touched_fwd, want_fwd);
  EXPECT_EQ(cr.inserted, post.num_edges() - base.num_edges());
  EXPECT_EQ(cr.staged, staged);
  EXPECT_EQ(dg.epochs(), 1u);

  // A second epoch with nothing staged is a no-op.
  const DeltaGraph::CompactionResult empty = dg.compact();
  EXPECT_TRUE(empty.touched_fwd.empty());
  EXPECT_TRUE(empty.touched_rev.empty());
  EXPECT_EQ(empty.inserted, 0u);
}

TEST(DeltaGraph, OverlayVisibilityAndValidation) {
  const Graph base = path_graph(6);
  DeltaGraph dg(base);
  // Unknown batch before any begin_batch().
  EXPECT_THROW(dg.stage(0, 0, 1), std::out_of_range);
  const auto b = dg.begin_batch();
  EXPECT_THROW(dg.stage(b, 6, 0), std::out_of_range);
  EXPECT_THROW(dg.stage(b, 0, 99), std::out_of_range);
  EXPECT_THROW(dg.stage(b + 1, 0, 1), std::out_of_range);

  ASSERT_FALSE(base.has_edge(0, 5));
  dg.stage(b, 0, 5);
  EXPECT_TRUE(dg.has_edge(0, 5));        // overlay-visible before the epoch
  EXPECT_FALSE(dg.csr().has_edge(0, 5)); // snapshot unchanged
  const auto pend = dg.pending(0);
  ASSERT_EQ(pend.size(), 1u);
  EXPECT_EQ(pend[0], 5u);
  dg.compact();
  EXPECT_TRUE(dg.csr().has_edge(0, 5));
  EXPECT_TRUE(dg.pending(0).empty());

  // The overlay merge and the kernels' position-indexed gathers require a
  // sorted base — an unvouched from_csr adoption is rejected up front.
  const Graph unsorted = Graph::from_csr({0, 2, 2}, {1, 0}, false);
  EXPECT_THROW(DeltaGraph{unsorted}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Warm + incremental refresh vs from-scratch CPU baselines (bit-exact).
// ---------------------------------------------------------------------------

TEST(StreamRefresh, HostStagedEpochsTrackFromScratchBaselines) {
  Machine m(MachineConfig::scaled(2));
  const Graph base = rmat(7, {}, 21);
  const VertexId n = base.num_vertices();
  StreamOptions opt;
  opt.pr_iterations = 3;
  auto& se = StreamEngine::install(m, base, opt);

  const RefreshResult w = se.warm();
  expect_rank_bits(w.pr.rank, baseline::pagerank(base, 3), "warm pagerank");
  EXPECT_EQ(w.bfs.dist, baseline::bfs(base, 0).dist);
  EXPECT_EQ(w.pr.rounds, 3u);

  Graph cur = base;
  for (int epoch = 0; epoch < 3; ++epoch) {
    auto recs = delta_recs(n, 8 + 4 * static_cast<std::uint64_t>(epoch),
                           11 + static_cast<std::uint64_t>(epoch));
    recs.push_back({0, n - 1 - static_cast<VertexId>(epoch), 0});  // root shortcut
    recs.push_back({5, 5, 0});      // self-loop, dropped
    recs.push_back(recs.front());   // duplicate, dropped
    se.stage(recs);
    const auto cr = se.compact(m.now());
    EXPECT_GT(cr.inserted, 0u) << "epoch " << epoch;
    cur = apply_delta(cur, recs);
    EXPECT_EQ(se.graph().csr().neighbors(), cur.neighbors());

    const RefreshResult r = se.refresh();
    expect_rank_bits(r.pr.rank, baseline::pagerank(cur, 3),
                     ("incremental pagerank epoch " + std::to_string(epoch)).c_str());
    const auto bfs_oracle = baseline::bfs(cur, 0);
    ASSERT_EQ(r.bfs.dist.size(), bfs_oracle.dist.size());
    for (VertexId v = 0; v < n; ++v)
      ASSERT_EQ(r.bfs.dist[v], bfs_oracle.dist[v])
          << "incremental bfs epoch " << epoch << " vertex " << v;
  }
  EXPECT_EQ(se.graph().epochs(), 3u);
  EXPECT_TRUE(m.idle());
}

TEST(StreamIngest, DevicePathMatchesHostStaging) {
  const Graph base = rmat(7, {}, 21);
  const auto recs = delta_recs(base.num_vertices(), 50, 3);  // 3200 B = 4 blocks

  StreamOptions opt;  // defaults, env-independent
  Machine ma(MachineConfig::scaled(2));
  auto& sa = StreamEngine::install(ma, base, opt);
  sa.warm();
  sa.stage(recs);
  sa.compact(ma.now());
  const RefreshResult ra = sa.refresh();

  Machine mb(MachineConfig::scaled(2));
  auto& sb = StreamEngine::install(mb, base, opt);
  sb.warm();
  const std::uint64_t b = sb.ingest_async(recs, mb.now());
  EXPECT_FALSE(sb.ingested(b));  // job launched, not yet run
  mb.run();
  ASSERT_TRUE(sb.ingested(b));
  sb.compact(mb.now());
  const RefreshResult rb = sb.refresh();

  // The TFORM parse job must stage the exact same edge set: identical
  // compacted CSRs (both sides) and bit-identical refresh results.
  EXPECT_EQ(sa.graph().csr().offsets(), sb.graph().csr().offsets());
  EXPECT_EQ(sa.graph().csr().neighbors(), sb.graph().csr().neighbors());
  EXPECT_EQ(sa.graph().rcsr().offsets(), sb.graph().rcsr().offsets());
  EXPECT_EQ(sa.graph().rcsr().neighbors(), sb.graph().rcsr().neighbors());
  expect_rank_bits(rb.pr.rank, ra.pr.rank, "device-vs-host pagerank");
  EXPECT_EQ(rb.bfs.dist, ra.bfs.dist);

  // And both match the from-scratch oracle on the post-delta graph.
  const Graph post = apply_delta(base, recs);
  expect_rank_bits(ra.pr.rank, baseline::pagerank(post, opt.pr_iterations),
                   "post-delta pagerank");
  EXPECT_EQ(ra.bfs.dist, baseline::bfs(post, opt.bfs_root).dist);
}

TEST(StreamEngineTest, InstallIsExclusiveAndOptionsReadEnv) {
  {
    EnvGuard e1("UD_STREAM_EPOCH", "12345");
    EnvGuard e2("UD_STREAM_BLOCK", "256");
    const StreamOptions o = StreamOptions::from_env();
    EXPECT_EQ(o.epoch, 12345u);
    EXPECT_EQ(o.block_bytes, 256u);
  }
  Machine m(MachineConfig::scaled(1));
  StreamEngine::install(m, path_graph(8), {});
  EXPECT_THROW(StreamEngine::install(m, path_graph(8), {}), std::logic_error);
}

// ---------------------------------------------------------------------------
// Determinism matrix: a mutating session confined to nodes {0,1} must be
// bit-identical — refresh results AND completion ticks — across UD_SHARDS x
// UD_CHECK, whether an unrelated partition-confined tenant runs on nodes
// {2,3} or not, and whether the delta batch lands before or after that
// tenant's launch tick.
// ---------------------------------------------------------------------------

struct Fingerprint {
  std::vector<Word> rank;
  std::vector<Word> dist;
  Tick pr_done = 0, bfs_done = 0;
  std::vector<Word> tenant_dist;
  Tick tenant_done = 0;
};

constexpr Tick kTenantAt = 1'000'000;
constexpr Tick kRefreshAt = 32'000'000;

Fingerprint run_variant(std::uint32_t shards, bool check, bool launch_tenant,
                        Tick ingest_at) {
  EnvGuard g1("UD_SHARDS", std::to_string(shards).c_str());
  EnvGuard g2("UD_CHECK", check ? "1" : "0");
  EnvGuard g3("UD_STEAL", "0");
  Machine m(MachineConfig::scaled(4));
  const auto lpn = static_cast<std::uint32_t>(m.config().total_lanes() / 4);

  StreamOptions opt;
  opt.pr_iterations = 2;
  opt.lanes = {0, 2 * lpn};
  opt.values = {0, 2, 32 * 1024};
  auto& se = StreamEngine::install(m, rmat(7, {}, 41), opt);
  auto& eng = serve::QueryEngine::install(m);
  se.warm();

  // The tenant is BUILT in every variant (identical allocation sequence) and
  // only LAUNCHED in the shared ones — the run_partitioned recipe.
  const Graph tg = rmat(7, {.symmetrize = true}, 42);
  const GraphPlacement tplace{2, 2, 32 * 1024};
  const DeviceGraph tdg = upload_graph(m, tg, tplace);
  serve::QuerySpec ts;
  ts.kind = serve::QueryKind::kBfs;
  ts.graph = &tdg;
  ts.lanes = {2 * lpn, 2 * lpn};
  ts.values = tplace;
  ts.root = 1;
  ts.name = "tenant.bfs";
  const serve::QueryId tq = eng.add_query(std::move(ts));

  const std::uint64_t b =
      se.ingest_async(delta_recs(se.graph().num_vertices(), 24, 7), ingest_at);
  if (launch_tenant) eng.launch(tq, kTenantAt);
  m.run();
  EXPECT_TRUE(se.ingested(b));
  se.compact(m.now());

  EXPECT_LE(m.now(), kRefreshAt);
  const serve::QueryId qp = eng.add_query(se.inc_pagerank_spec());
  const serve::QueryId qb = eng.add_query(se.inc_bfs_spec());
  eng.launch(qp, kRefreshAt);
  eng.launch(qb, kRefreshAt);
  m.run();
  EXPECT_TRUE(eng.done(qp) && eng.done(qb));
  if (check) {
    EXPECT_TRUE(m.stats().check.enabled);
    EXPECT_EQ(m.stats().check.errors(), 0u);
  }

  Fingerprint fp;
  const serve::QueryResult rp = eng.collect(qp);
  const serve::QueryResult rb = eng.collect(qb);
  for (const double d : rp.rank) fp.rank.push_back(std::bit_cast<Word>(d));
  fp.dist = rb.dist;
  fp.pr_done = rp.done_tick;
  fp.bfs_done = rb.done_tick;
  if (launch_tenant) {
    const serve::QueryResult rt = eng.collect(tq);
    fp.tenant_dist = rt.dist;
    fp.tenant_done = rt.done_tick;
  }
  return fp;
}

TEST(StreamDeterminism, MutatingSessionBitIdenticalAcrossShardsChecksAndTenants) {
  const Fingerprint solo = run_variant(1, false, false, 1000);
  ASSERT_FALSE(solo.rank.empty());

  // Correctness of the solo fingerprint vs the post-delta oracle.
  const Graph base = rmat(7, {}, 41);
  const Graph post = apply_delta(base, delta_recs(base.num_vertices(), 24, 7));
  const auto pr_oracle = baseline::pagerank(post, 2);
  ASSERT_EQ(solo.rank.size(), pr_oracle.size());
  for (std::size_t v = 0; v < pr_oracle.size(); ++v)
    ASSERT_EQ(solo.rank[v], std::bit_cast<Word>(pr_oracle[v])) << "vertex " << v;
  EXPECT_EQ(solo.dist, baseline::bfs(post, 0).dist);

  Fingerprint first_shared;
  bool have_shared = false;
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    const Fingerprint fp = run_variant(shards, true, true, 1000);
    EXPECT_EQ(fp.rank, solo.rank) << "shards=" << shards;
    EXPECT_EQ(fp.dist, solo.dist) << "shards=" << shards;
    EXPECT_EQ(fp.pr_done, solo.pr_done) << "shards=" << shards;
    EXPECT_EQ(fp.bfs_done, solo.bfs_done) << "shards=" << shards;
    if (!have_shared) {
      first_shared = fp;
      have_shared = true;
      // The tenant itself must be correct while the session mutates around it.
      const Graph tg = rmat(7, {.symmetrize = true}, 42);
      EXPECT_EQ(fp.tenant_dist, baseline::bfs(tg, 1).dist);
    } else {
      EXPECT_EQ(fp.tenant_dist, first_shared.tenant_dist) << "shards=" << shards;
      EXPECT_EQ(fp.tenant_done, first_shared.tenant_done) << "shards=" << shards;
    }
  }

  // Delta batch landing AFTER the tenant's launch tick instead of before:
  // same session results/ticks, same tenant results/ticks.
  const Fingerprint late = run_variant(1, true, true, 2'000'000);
  EXPECT_EQ(late.rank, solo.rank);
  EXPECT_EQ(late.dist, solo.dist);
  EXPECT_EQ(late.pr_done, solo.pr_done);
  EXPECT_EQ(late.bfs_done, solo.bfs_done);
  EXPECT_EQ(late.tenant_dist, first_shared.tenant_dist);
  EXPECT_EQ(late.tenant_done, first_shared.tenant_done);
}

// ---------------------------------------------------------------------------
// Scheduler integration: a submitted delta batch is a mutation epoch —
// pre-arrival queries see the old graph, post-arrival queries are gated
// until the epoch applies and see the new one.
// ---------------------------------------------------------------------------

TEST(StreamScheduler, MutationGatesPostArrivalQueriesAndAppliesOnEpochGrid) {
  Machine m(MachineConfig::scaled(2));
  const Graph base = rmat(7, {}, 9);
  StreamOptions opt;
  opt.pr_iterations = 2;
  opt.epoch = 300'000;  // compaction grid
  auto& se = StreamEngine::install(m, base, opt);
  auto& eng = serve::QueryEngine::install(m);
  se.warm();

  serve::Scheduler sched(eng, {.max_concurrent = 1, .max_queue = 8});
  const auto recs = delta_recs(base.num_vertices(), 20, 77);
  const Graph post = apply_delta(base, recs);

  // Pre-epoch ticket first; its result is collected BEFORE the epoch because
  // incremental queries refresh the shared resident arrays in place.
  const serve::TicketId pre_t =
      sched.submit(se.full_pagerank_spec(), serve::QoS::kNormal, m.now() + 1000);
  sched.drain();
  EXPECT_EQ(sched.ticket(pre_t).status, serve::TicketStatus::kDone);
  expect_rank_bits(eng.collect(sched.ticket(pre_t).query).rank,
                   baseline::pagerank(base, 2), "pre-epoch pagerank");

  const Tick arrival = m.now() + 2'000'000;
  const Tick boundary = ((arrival + opt.epoch - 1) / opt.epoch) * opt.epoch;
  const serve::MutationId mu = se.submit(sched, recs, arrival);
  const serve::TicketId post_full =
      sched.submit(se.full_pagerank_spec(), serve::QoS::kNormal, arrival + 10'000);
  const serve::TicketId post_inc =
      sched.submit(se.inc_pagerank_spec(), serve::QoS::kNormal, arrival + 20'000);
  const serve::TicketId post_bfs =
      sched.submit(se.inc_bfs_spec(), serve::QoS::kNormal, arrival + 30'000);
  sched.drain();

  ASSERT_TRUE(sched.mutation_applied(mu));
  // Applied at/after the next epoch boundary >= arrival, with the
  // pre-arrival ticket fully out of the way first.
  EXPECT_GE(sched.mutation_applied_tick(mu), boundary);
  EXPECT_LE(sched.ticket(pre_t).done, sched.mutation_applied_tick(mu));
  for (const serve::TicketId t : {post_full, post_inc, post_bfs}) {
    EXPECT_EQ(sched.ticket(t).status, serve::TicketStatus::kDone);
    EXPECT_GE(sched.ticket(t).dispatch, sched.mutation_applied_tick(mu));
  }

  // Post-epoch queries (full recompute AND incremental refresh) see the
  // post-delta graph — bit-exact against the from-scratch oracle.
  const auto post_oracle = baseline::pagerank(post, 2);
  expect_rank_bits(eng.collect(sched.ticket(post_full).query).rank, post_oracle,
                   "post-epoch full pagerank");
  expect_rank_bits(eng.collect(sched.ticket(post_inc).query).rank, post_oracle,
                   "post-epoch incremental pagerank");
  EXPECT_EQ(eng.collect(sched.ticket(post_bfs).query).dist,
            baseline::bfs(post, 0).dist);
  EXPECT_EQ(se.graph().epochs(), 1u);
  EXPECT_EQ(se.last_epoch_tick(), sched.mutation_applied_tick(mu));
}

}  // namespace
}  // namespace updown::stream
