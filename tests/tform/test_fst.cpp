// TFORM transducer: CSV parsing, resumability across block boundaries,
// padding handling, error detection, and the stream generator.
#include "tform/fst.hpp"

#include <gtest/gtest.h>

#include "tform/stream_gen.hpp"

namespace updown::tform {
namespace {

TEST(Fst, ParsesSimpleCsv) {
  auto records = Fst::csv().parse_all("1,2,3\n40,50,60\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<Word>{1, 2, 3}));
  EXPECT_EQ(records[1], (std::vector<Word>{40, 50, 60}));
}

TEST(Fst, HandlesPaddingBeforeTerminators) {
  auto records = Fst::csv().parse_all("7 ,8  ,9   \n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (std::vector<Word>{7, 8, 9}));
}

TEST(Fst, ResumesAcrossArbitrarySplits) {
  const std::string text = "123,456,789\n11,22,33\n5,6,7\n";
  const auto whole = Fst::csv().parse_all(text);
  const Fst fst = Fst::csv();
  for (std::size_t split = 1; split < text.size(); ++split) {
    Fst::Cursor cur;
    std::vector<std::vector<Word>> records;
    auto cb = [&](const std::vector<Word>& f) { records.push_back(f); };
    const auto* data = reinterpret_cast<const std::uint8_t*>(text.data());
    fst.run({data, split}, cur, cb);
    EXPECT_EQ(cur.mid_record, text[split - 1] != '\n');
    fst.run({data + split, text.size() - split}, cur, cb);
    EXPECT_EQ(records, whole) << "split at " << split;
  }
}

TEST(Fst, RejectsGarbage) {
  EXPECT_THROW(Fst::csv().parse_all("1,x,3\n"), std::runtime_error);
}

TEST(Fst, ParseCostScalesWithBytes) {
  EXPECT_GT(parse_cost(4000), parse_cost(400));
  EXPECT_LE(parse_cost(4000), 4000u);  // faster than one cycle/byte
}

TEST(StreamGen, RecordsAreExactly64Bytes) {
  RecordStream s = make_stream(100);
  EXPECT_EQ(s.bytes.size(), 100 * kRecordBytes);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(s.bytes[(i + 1) * kRecordBytes - 1], '\n') << "record " << i;
}

TEST(StreamGen, ParsesBackToGroundTruth) {
  RecordStream s = make_stream(200, 1000, 5, 9);
  auto records = Fst::csv().parse_all(s.bytes);
  ASSERT_EQ(records.size(), s.records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i][0], s.records[i].src);
    EXPECT_EQ(records[i][1], s.records[i].dst);
    EXPECT_EQ(records[i][2], s.records[i].type);
  }
}

TEST(StreamGen, DeterministicPerSeed) {
  EXPECT_EQ(make_stream(50, 100, 3, 4).bytes, make_stream(50, 100, 3, 4).bytes);
  EXPECT_NE(make_stream(50, 100, 3, 4).bytes, make_stream(50, 100, 3, 5).bytes);
}

}  // namespace
}  // namespace updown::tform
