// SHMEM collectives: barrier generation reuse, multiple teams, remote
// coordinator placement.
#include <gtest/gtest.h>

#include "abstractions/shmem.hpp"

namespace updown::shmem {
namespace {

struct GenApp {
  TeamId team = 0;
  unsigned rounds = 3;
  EventLabel member = 0, released = 0;
  std::vector<Word> sums_seen;
};

// Each member re-arrives at the barrier `rounds` times; generations must not
// bleed into each other.
struct GenMember : ThreadState {
  unsigned round = 0;

  void start(Ctx& ctx) { arrive(ctx); }

  void released(Ctx& ctx) {
    auto& app = ctx.machine().user<GenApp>();
    app.sums_seen.push_back(ctx.op(0));
    if (++round < app.rounds)
      arrive(ctx);
    else
      ctx.yield_terminate();
  }

 private:
  void arrive(Ctx& ctx) {
    auto& app = ctx.machine().user<GenApp>();
    auto& sh = ctx.machine().service<Shmem>();
    // Contribute (round+1) so each generation has a distinct expected sum.
    sh.all_reduce_add(ctx, app.team, round + 1,
                      ctx.evw_update_event(ctx.cevnt(), app.released));
  }
};

TEST(ShmemCollectives, BarrierGenerationsDoNotBleed) {
  Machine m(MachineConfig::scaled(2));
  auto& sh = Shmem::install(m);
  auto& app = m.emplace_user<GenApp>();
  const std::uint32_t members = 8;
  app.team = sh.create_team(/*coordinator=*/m.first_lane_of_node(1), members);
  app.member = m.program().event("GenMember::start", &GenMember::start);
  app.released = m.program().event("GenMember::released", &GenMember::released);

  for (NetworkId l = 0; l < members; ++l)
    m.send_from_host(evw::make_new(l * 3, app.member), {});
  m.run();

  ASSERT_EQ(app.sums_seen.size(), members * app.rounds);
  // Every member must see sum = members * (round+1) for its round. Rounds
  // are globally ordered because a member cannot re-arrive before release.
  std::map<Word, unsigned> counts;
  for (Word s : app.sums_seen) counts[s]++;
  EXPECT_EQ(counts[members * 1], members);
  EXPECT_EQ(counts[members * 2], members);
  EXPECT_EQ(counts[members * 3], members);
}

TEST(ShmemCollectives, IndependentTeams) {
  Machine m(MachineConfig::scaled(1));
  auto& sh = Shmem::install(m);
  auto& app = m.emplace_user<GenApp>();
  app.rounds = 1;
  const TeamId a = sh.create_team(0, 4);
  const TeamId b = sh.create_team(5, 2);
  app.member = m.program().event("GenMember::start", &GenMember::start);
  app.released = m.program().event("GenMember::released", &GenMember::released);

  app.team = a;
  for (NetworkId l = 0; l < 4; ++l) m.send_from_host(evw::make_new(l, app.member), {});
  m.run();
  EXPECT_EQ(app.sums_seen.size(), 4u);
  for (Word s : app.sums_seen) EXPECT_EQ(s, 4u);

  app.sums_seen.clear();
  app.team = b;
  for (NetworkId l = 10; l < 12; ++l) m.send_from_host(evw::make_new(l, app.member), {});
  m.run();
  EXPECT_EQ(app.sums_seen.size(), 2u);
  for (Word s : app.sums_seen) EXPECT_EQ(s, 2u);
}

}  // namespace
}  // namespace updown::shmem
