// Scalable hash table: insert/upsert/lookup through simulated messages and
// DRAM, verified against a host-side mirror.
#include "abstractions/sht.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"

namespace updown::sht {
namespace {

// A driver thread that executes a scripted op sequence with one op in flight
// (results recorded in the app struct for assertions).
struct ShtScript {
  struct Op {
    enum Kind { kInsert, kUpsert, kLookup } kind;
    Word key, value;
  };
  TableId table = 0;
  std::vector<Op> ops;
  std::vector<std::pair<Word, Word>> replies;  // (status/found, value)
  EventLabel start = 0, reply = 0;
};

struct ShtDriver : ThreadState {
  std::size_t next = 0;

  void d_start(Ctx& ctx) { issue(ctx); }

  void d_reply(Ctx& ctx) {
    auto& s = ctx.machine().user<ShtScript>();
    s.replies.emplace_back(ctx.op(0), ctx.nops() > 1 ? ctx.op(1) : 0);
    issue(ctx);
  }

 private:
  void issue(Ctx& ctx) {
    auto& s = ctx.machine().user<ShtScript>();
    auto& reg = ctx.machine().service<Registry>();
    if (next >= s.ops.size()) {
      ctx.yield_terminate();
      return;
    }
    const auto& op = s.ops[next++];
    const Word cont = ctx.evw_update_event(ctx.cevnt(), s.reply);
    switch (op.kind) {
      case ShtScript::Op::kInsert:
        reg.insert(ctx, s.table, op.key, op.value, cont);
        break;
      case ShtScript::Op::kUpsert:
        reg.upsert_add(ctx, s.table, op.key, op.value, cont);
        break;
      case ShtScript::Op::kLookup:
        reg.lookup(ctx, s.table, op.key, cont);
        break;
    }
  }
};

class ShtTest : public ::testing::Test {
 protected:
  void run_script(std::uint32_t nodes, TableConfig cfg) {
    m_ = std::make_unique<Machine>(MachineConfig::scaled(nodes));
    auto& reg = Registry::install(*m_);
    script_ = &m_->emplace_user<ShtScript>();
    script_->table = reg.create(cfg);
    script_->start = m_->program().event("ShtDriver::d_start", &ShtDriver::d_start);
    script_->reply = m_->program().event("ShtDriver::d_reply", &ShtDriver::d_reply);
  }
  void go() {
    m_->send_from_host(evw::make_new(0, script_->start), {});
    m_->run();
  }
  std::unique_ptr<Machine> m_;
  ShtScript* script_ = nullptr;
};

TEST_F(ShtTest, InsertLookupRoundTrip) {
  run_script(2, {});
  using Op = ShtScript::Op;
  script_->ops = {{Op::kInsert, 42, 1000}, {Op::kLookup, 42, 0}, {Op::kLookup, 43, 0}};
  go();
  ASSERT_EQ(script_->replies.size(), 3u);
  EXPECT_EQ(script_->replies[0].first, kInserted);
  EXPECT_EQ(script_->replies[1].first, 1u);      // found
  EXPECT_EQ(script_->replies[1].second, 1000u);  // value
  EXPECT_EQ(script_->replies[2].first, 0u);      // missing
}

TEST_F(ShtTest, InsertOverwrites) {
  run_script(1, {});
  using Op = ShtScript::Op;
  script_->ops = {{Op::kInsert, 7, 1}, {Op::kInsert, 7, 2}, {Op::kLookup, 7, 0}};
  go();
  EXPECT_EQ(script_->replies[1].first, kUpdated);
  EXPECT_EQ(script_->replies[2].second, 2u);
}

TEST_F(ShtTest, UpsertAccumulates) {
  run_script(2, {});
  using Op = ShtScript::Op;
  script_->ops = {{Op::kUpsert, 5, 10}, {Op::kUpsert, 5, 32}, {Op::kLookup, 5, 0}};
  go();
  EXPECT_EQ(script_->replies[0].first, kInserted);
  EXPECT_EQ(script_->replies[1].first, kUpdated);
  EXPECT_EQ(script_->replies[1].second, 42u);
  EXPECT_EQ(script_->replies[2].second, 42u);
}

TEST_F(ShtTest, FillsUpAndReportsFull) {
  TableConfig tiny;
  tiny.buckets_per_lane = 1;
  tiny.entries_per_bucket = 2;
  tiny.lanes = {0, 1};  // single owner lane: capacity 2
  run_script(1, tiny);
  using Op = ShtScript::Op;
  script_->ops = {{Op::kInsert, 1, 1}, {Op::kInsert, 2, 2}, {Op::kInsert, 3, 3}};
  go();
  EXPECT_EQ(script_->replies[0].first, kInserted);
  EXPECT_EQ(script_->replies[1].first, kInserted);
  EXPECT_EQ(script_->replies[2].first, kFull);
}

TEST_F(ShtTest, RandomWorkloadMatchesStdMap) {
  run_script(4, {});
  using Op = ShtScript::Op;
  Xoshiro256 rng(77);
  std::map<Word, Word> mirror;
  for (int i = 0; i < 400; ++i) {
    const Word key = rng.below(64);
    const Word delta = rng.below(100);
    script_->ops.push_back({Op::kUpsert, key, delta});
    mirror[key] += delta;
  }
  go();
  auto& reg = m_->service<Registry>();
  EXPECT_EQ(reg.size(script_->table), mirror.size());
  for (const auto& [key, value] : mirror) {
    Word got = 0;
    ASSERT_TRUE(reg.host_lookup(script_->table, key, &got)) << "key " << key;
    EXPECT_EQ(got, value) << "key " << key;
  }
}

TEST_F(ShtTest, EntriesLandInDramOnOwnerNode) {
  run_script(4, {});
  using Op = ShtScript::Op;
  script_->ops = {{Op::kInsert, 1234, 9}};
  go();
  auto& reg = m_->service<Registry>();
  Word v = 0;
  EXPECT_TRUE(reg.host_lookup(script_->table, 1234, &v));
  EXPECT_EQ(v, 9u);
  EXPECT_GT(m_->stats().dram_writes, 0u);
}

}  // namespace
}  // namespace updown::sht
