// ParallelGraph, SHMEM, and GlobalSort over the simulated machine.
#include <gtest/gtest.h>

#include <algorithm>

#include "abstractions/global_sort.hpp"
#include "abstractions/parallel_graph.hpp"
#include "abstractions/shmem.hpp"
#include "common/rng.hpp"

namespace updown {
namespace {

// ---------------------------------------------------------------------------
// ParallelGraph: stream edges in from a driver, verify contents host-side.
// ---------------------------------------------------------------------------
struct PgScript {
  std::vector<std::array<Word, 3>> edges;  // {src, dst, type}
  EventLabel start = 0, next = 0;
  Tick done_at = 0;
};

struct PgDriver : ThreadState {
  std::size_t i = 0;
  void d_start(Ctx& ctx) { issue(ctx); }
  void d_next(Ctx& ctx) { issue(ctx); }

 private:
  void issue(Ctx& ctx) {
    auto& s = ctx.machine().user<PgScript>();
    if (i >= s.edges.size()) {
      s.done_at = ctx.now();
      ctx.yield_terminate();
      return;
    }
    const auto& e = s.edges[i++];
    ctx.machine().service<pgraph::ParallelGraph>().insert_edge(
        ctx, e[0], e[1], e[2], ctx.evw_update_event(ctx.cevnt(), s.next));
  }
};

TEST(ParallelGraph, StreamedEdgesAreQueryable) {
  Machine m(MachineConfig::scaled(4));
  auto& pg = pgraph::ParallelGraph::install(m);
  auto& s = m.emplace_user<PgScript>();
  s.start = m.program().event("PgDriver::d_start", &PgDriver::d_start);
  s.next = m.program().event("PgDriver::d_next", &PgDriver::d_next);
  Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i)
    s.edges.push_back({rng.below(50), rng.below(50), 1 + rng.below(5)});

  m.send_from_host(evw::make_new(0, s.start), {});
  m.run();

  EXPECT_GT(s.done_at, 0u);
  for (const auto& e : s.edges) {
    Word type = 0;
    ASSERT_TRUE(pg.host_has_edge(e[0], e[1], &type));
    EXPECT_TRUE(pg.host_has_vertex(e[0]));
    EXPECT_TRUE(pg.host_has_vertex(e[1]));
  }
  EXPECT_FALSE(pg.host_has_edge(999, 998));
}

TEST(ParallelGraph, VertexDegreeCountsOutEdges) {
  Machine m(MachineConfig::scaled(2));
  auto& pg = pgraph::ParallelGraph::install(m);
  auto& s = m.emplace_user<PgScript>();
  s.start = m.program().event("PgDriver::d_start", &PgDriver::d_start);
  s.next = m.program().event("PgDriver::d_next", &PgDriver::d_next);
  s.edges = {{1, 2, 7}, {1, 3, 7}, {1, 4, 7}, {2, 1, 7}};
  m.send_from_host(evw::make_new(0, s.start), {});
  m.run();
  Word deg = 0;
  ASSERT_TRUE(pg.host_has_vertex(1, &deg));
  EXPECT_EQ(deg, 3u);
  ASSERT_TRUE(pg.host_has_vertex(4, &deg));
  EXPECT_EQ(deg, 0u);
}

// ---------------------------------------------------------------------------
// SHMEM: put/get and all-reduce collectives.
// ---------------------------------------------------------------------------
struct ShmemApp {
  shmem::TeamId team = 0;
  Addr cell = 0;
  EventLabel member = 0, released = 0, got = 0;
  std::vector<Word> sums;
  Word fetched = 0;
};

struct ShmemMember : ThreadState {
  void m_start(Ctx& ctx) {
    auto& app = ctx.machine().user<ShmemApp>();
    auto& sh = ctx.machine().service<shmem::Shmem>();
    // Contribute this lane's id + 1 to the team sum.
    sh.all_reduce_add(ctx, app.team, ctx.nwid() + 1,
                      ctx.evw_update_event(ctx.cevnt(), app.released));
  }
  void m_released(Ctx& ctx) {
    auto& app = ctx.machine().user<ShmemApp>();
    app.sums.push_back(ctx.op(0));
    if (ctx.nwid() == 0) {
      // Member 0 then puts the sum into a global cell and reads it back.
      auto& sh = ctx.machine().service<shmem::Shmem>();
      sh.put(ctx, app.cell, ctx.op(0), ctx.evw_update_event(ctx.cevnt(), app.got));
    } else {
      ctx.yield_terminate();
    }
  }
  void m_got(Ctx& ctx) {
    auto& app = ctx.machine().user<ShmemApp>();
    auto& sh = ctx.machine().service<shmem::Shmem>();
    if (app.fetched == 0) {
      app.fetched = 1;
      sh.get(ctx, app.cell, ctx.evw_update_event(ctx.cevnt(), app.got));
    } else {
      app.fetched = ctx.op(0);
      ctx.yield_terminate();
    }
  }
};

TEST(Shmem, AllReduceThenPutGet) {
  Machine m(MachineConfig::scaled(2));
  auto& sh = shmem::Shmem::install(m);
  auto& app = m.emplace_user<ShmemApp>();
  const std::uint32_t members = 16;
  app.team = sh.create_team(0, members);
  app.cell = m.memory().dram_malloc_spread(64, 4096);
  app.member = m.program().event("ShmemMember::m_start", &ShmemMember::m_start);
  app.released = m.program().event("ShmemMember::m_released", &ShmemMember::m_released);
  app.got = m.program().event("ShmemMember::m_got", &ShmemMember::m_got);

  for (NetworkId l = 0; l < members; ++l)
    m.send_from_host(evw::make_new(l, app.member), {});
  m.run();

  const Word expect = members * (members + 1) / 2;  // sum of lane+1
  ASSERT_EQ(app.sums.size(), members);
  for (Word s : app.sums) EXPECT_EQ(s, expect);
  EXPECT_EQ(app.fetched, expect);  // put then get round-tripped through DRAM
  EXPECT_EQ(m.memory().host_load<Word>(app.cell), expect);
}

TEST(Shmem, BarrierReleasesEveryone) {
  Machine m(MachineConfig::scaled(1));
  auto& sh = shmem::Shmem::install(m);
  EXPECT_THROW(sh.create_team(0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GlobalSort.
// ---------------------------------------------------------------------------
class GlobalSortTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobalSortTest, SortsRandomSequences) {
  Machine m(MachineConfig::scaled(2));
  auto& gs = gsort::GlobalSort::install(m);
  const std::uint64_t n = GetParam();
  Addr input = m.memory().dram_malloc_spread(std::max<std::uint64_t>(8, n * 8), 4096);
  Xoshiro256 rng(n);
  std::vector<Word> data(n);
  for (auto& v : data) v = rng() >> 16;  // 48-bit keys
  m.memory().host_write(input, data.data(), n * 8);

  auto r = gs.sort(input, n, 48);
  EXPECT_GT(r.done_tick, r.start_tick);

  auto sorted = gs.host_read_sorted();
  std::sort(data.begin(), data.end());
  EXPECT_EQ(sorted, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GlobalSortTest, ::testing::Values(1, 8, 100, 1000, 5000));

TEST(GlobalSort, AlreadySortedAndDuplicates) {
  Machine m(MachineConfig::scaled(1));
  auto& gs = gsort::GlobalSort::install(m);
  std::vector<Word> data = {5, 5, 5, 1, 1, 2, 2, 2, 2, 0};
  Addr input = m.memory().dram_malloc_spread(data.size() * 8, 4096);
  m.memory().host_write(input, data.data(), data.size() * 8);
  gs.sort(input, data.size(), 8);
  auto sorted = gs.host_read_sorted();
  std::sort(data.begin(), data.end());
  EXPECT_EQ(sorted, data);
}

}  // namespace
}  // namespace updown
