// udtrace: the opt-in timeline/profiling layer (src/trace/).
//
// The load-bearing properties asserted here:
//   - off by default and zero-observable: no tracer, no files;
//   - the serialized trace is byte-identical across UD_SHARDS counts and
//     across repeated runs (the same determinism contract as the engine);
//   - phase spans (KVMSR map / shuffle-drain) appear begin-before-end and
//     balanced — the structural golden for a tiny KVMSR job;
//   - the UD_TRACE env path overrides the configured path, and UD_TRACE_SLICE
//     parses strictly;
//   - the hot-path slice bucketing splits busy cycles across boundaries.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "kvmsr/kvmsr.hpp"

namespace updown {
namespace {

/// Pin an environment variable for the scope of a test (and restore it
/// after); the suite may run under ambient UD_SHARDS / UD_TRACE in CI.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (old) old_ = old;
    if (value) ::setenv(name, value, 1);
    else ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) ::setenv(name_.c_str(), old_.c_str(), 1);
    else ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing file: " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

bool file_exists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

// ---------------------------------------------------------------------------
// Tiny KVMSR job: map key k emits (k % 7, k); reduce just retires the tuple.
// Small enough for a structural golden, big enough to cross nodes.
// ---------------------------------------------------------------------------
struct TinyMap : ThreadState {
  void kv_map(Ctx& ctx) {
    auto& lib = ctx.machine().service<kvmsr::Library>();
    const Word k = kvmsr::Library::map_key(ctx);
    ctx.charge(2);
    lib.emit(ctx, kvmsr::Library::map_job(ctx), k % 7, k);
    lib.map_return(ctx, ctx.ccont());
  }
};

struct TinyReduce : ThreadState {
  void kv_reduce(Ctx& ctx) {
    auto& lib = ctx.machine().service<kvmsr::Library>();
    ctx.charge(1);
    lib.reduce_return(ctx, kvmsr::Library::reduce_job(ctx));
  }
};

struct Noop : ThreadState {
  void go(Ctx& ctx) {
    ctx.charge(1);
    ctx.yield_terminate();
  }
};

/// Run the tiny job on a 4-node machine with tracing to `trace_path` under
/// `shards` host threads; returns the job's done tick.
Tick run_tiny_traced(const std::string& trace_path, std::uint32_t shards) {
  EnvGuard g1("UD_SHARDS", std::to_string(shards).c_str());
  EnvGuard g2("UD_TRACE", nullptr);        // config path, not env, drives this run
  EnvGuard g3("UD_TRACE_SLICE", nullptr);
  EnvGuard g4("UD_CHECK", "0");
  EnvGuard g5("UD_COALESCE", nullptr);
  MachineConfig cfg = MachineConfig::scaled(4);
  cfg.trace = trace_path;
  Machine m(cfg);
  EXPECT_NE(m.tracer(), nullptr);
  auto& lib = kvmsr::Library::install(m);
  kvmsr::JobSpec spec;
  spec.kv_map = m.program().event("TinyMap::kv_map", &TinyMap::kv_map);
  spec.kv_reduce = m.program().event("TinyReduce::kv_reduce", &TinyReduce::kv_reduce);
  spec.name = "tiny";
  const kvmsr::JobId job = lib.add_job(spec);
  const kvmsr::JobState& st = lib.run_to_completion(job, 0, 500);
  EXPECT_EQ(st.total_emitted, 500u);
  return st.done_tick;
}

TEST(TraceTest, OffByDefaultNoTracerNoFiles) {
  EnvGuard g1("UD_TRACE", nullptr);
  EnvGuard g2("UD_SHARDS", "1");
  Machine m(MachineConfig::scaled(1));
  EXPECT_EQ(m.tracer(), nullptr);
}

TEST(TraceTest, WritesJsonAndCsvSiblings) {
  const std::string path = testing::TempDir() + "udtrace_basic.json";
  run_tiny_traced(path, 1);
  ASSERT_TRUE(file_exists(path));
  ASSERT_TRUE(file_exists(path + ".csv"));
  const std::string json = slurp(path);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"udtrace\""), std::string::npos);
  EXPECT_NE(json.find("\"busy cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"traffic_matrix_messages\""), std::string::npos);
  EXPECT_NE(json.find("\"message_latency_hist\""), std::string::npos);
  const std::string csv = slurp(path + ".csv");
  EXPECT_EQ(csv.rfind("# udtrace v1", 0), 0u);
  EXPECT_NE(csv.find("lane_busy,"), std::string::npos);
  EXPECT_NE(csv.find("phase,"), std::string::npos);
}

// The structural golden: the KVMSR master emits one balanced map span and one
// balanced shuffle-drain span, begin strictly before end, map before drain.
TEST(TraceTest, KvmsrPhaseSpansBalancedAndOrdered) {
  const std::string path = testing::TempDir() + "udtrace_phases.json";
  run_tiny_traced(path, 1);
  const std::string json = slurp(path);

  const auto count = [&](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("\"name\":\"tiny:map\",\"ph\":\"B\""), 1u);
  EXPECT_EQ(count("\"name\":\"tiny:map\",\"ph\":\"E\""), 1u);
  EXPECT_EQ(count("\"name\":\"tiny:drain\",\"ph\":\"B\""), 1u);
  EXPECT_EQ(count("\"name\":\"tiny:drain\",\"ph\":\"E\""), 1u);
  EXPECT_EQ(count("\"name\":\"tiny:flush\""), 0u);  // no flush phase configured

  const std::size_t map_b = json.find("\"name\":\"tiny:map\",\"ph\":\"B\"");
  const std::size_t map_e = json.find("\"name\":\"tiny:map\",\"ph\":\"E\"");
  const std::size_t drain_b = json.find("\"name\":\"tiny:drain\",\"ph\":\"B\"");
  const std::size_t drain_e = json.find("\"name\":\"tiny:drain\",\"ph\":\"E\"");
  // Phase events are serialized in (t, lane, seq) order, so textual order is
  // timeline order: map opens, closes, then the drain opens and closes.
  EXPECT_LT(map_b, map_e);
  EXPECT_LE(map_e, drain_b);
  EXPECT_LT(drain_b, drain_e);
}

TEST(TraceTest, ByteIdenticalAcrossShardCounts) {
  const std::string p1 = testing::TempDir() + "udtrace_s1.json";
  const std::string p4 = testing::TempDir() + "udtrace_s4.json";
  const Tick d1 = run_tiny_traced(p1, 1);
  const Tick d4 = run_tiny_traced(p4, 4);
  EXPECT_EQ(d1, d4);  // tracing never perturbs simulated time
  EXPECT_EQ(slurp(p1), slurp(p4));
  EXPECT_EQ(slurp(p1 + ".csv"), slurp(p4 + ".csv"));
}

TEST(TraceTest, ByteIdenticalAcrossRepeatedRuns) {
  const std::string pa = testing::TempDir() + "udtrace_runA.json";
  const std::string pb = testing::TempDir() + "udtrace_runB.json";
  run_tiny_traced(pa, 2);
  run_tiny_traced(pb, 2);
  EXPECT_EQ(slurp(pa), slurp(pb));
  EXPECT_EQ(slurp(pa + ".csv"), slurp(pb + ".csv"));
}

TEST(TraceTest, EnvPathOverridesConfiguredPath) {
  const std::string cfg_path = testing::TempDir() + "udtrace_cfg_path.json";
  const std::string env_path = testing::TempDir() + "udtrace_env_path.json";
  std::remove(cfg_path.c_str());
  std::remove(env_path.c_str());
  EnvGuard g1("UD_TRACE", env_path.c_str());
  EnvGuard g2("UD_SHARDS", "1");
  MachineConfig cfg = MachineConfig::scaled(1);
  cfg.trace = cfg_path;
  Machine m(cfg);
  ASSERT_NE(m.tracer(), nullptr);
  EXPECT_EQ(m.tracer()->path(), env_path);
  m.send_from_host(evw::make_new(0, m.program().event("noop", &Noop::go)), {});
  m.run();
  EXPECT_TRUE(file_exists(env_path));
  EXPECT_FALSE(file_exists(cfg_path));
}

TEST(TraceTest, TraceSliceEnvParsesStrictly) {
  EnvGuard g1("UD_TRACE", "/tmp/udtrace_unused.json");
  {
    EnvGuard g2("UD_TRACE_SLICE", "512");
    Machine m(MachineConfig::scaled(1));
    ASSERT_NE(m.tracer(), nullptr);
    EXPECT_EQ(m.tracer()->slice(), 512u);
  }
  {
    EnvGuard g2("UD_TRACE_SLICE", "0");  // 0 keeps the configured default
    Machine m(MachineConfig::scaled(1));
    ASSERT_NE(m.tracer(), nullptr);
    EXPECT_EQ(m.tracer()->slice(), MachineConfig{}.trace_slice);
  }
  {
    EnvGuard g2("UD_TRACE_SLICE", "1024x");
    EXPECT_THROW(Machine m(MachineConfig::scaled(1)), std::invalid_argument);
  }
  {
    EnvGuard g2("UD_TRACE_SLICE", "-4");
    EXPECT_THROW(Machine m(MachineConfig::scaled(1)), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Tracer unit level: slice bucketing and the imbalance series.
// ---------------------------------------------------------------------------
TEST(TracerUnitTest, BusyCostSplitsAcrossSliceBoundaries) {
  const MachineConfig cfg = MachineConfig::scaled(1);  // 32 lanes
  Tracer t(cfg, 1, "unused.json", /*slice=*/10);
  // 15 busy cycles starting at tick 5: 5 land in slice 0, 10 in slice 1.
  t.on_execute(/*lane=*/0, /*node=*/0, /*arrive=*/5, /*start=*/5, /*cost=*/15);
  const std::vector<double> imb = t.imbalance_series();
  ASSERT_EQ(imb.size(), 2u);
  // One active lane out of 32: peak == total, so max/mean == lane count.
  const double nlanes = static_cast<double>(cfg.total_lanes());
  EXPECT_DOUBLE_EQ(imb[0], nlanes);
  EXPECT_DOUBLE_EQ(imb[1], nlanes);
}

TEST(TracerUnitTest, ImbalanceIsMaxOverMeanPerSlice) {
  const MachineConfig cfg = MachineConfig::scaled(1);
  Tracer t(cfg, 1, "unused.json", /*slice=*/100);
  // Slice 0: two lanes busy 10 and 30 -> total 40 over 32 lanes, peak 30.
  t.on_execute(0, 0, 0, 0, 10);
  t.on_execute(1, 0, 0, 20, 30);
  const std::vector<double> imb = t.imbalance_series();
  ASSERT_EQ(imb.size(), 1u);
  EXPECT_DOUBLE_EQ(imb[0], 30.0 * 32.0 / 40.0);
}

TEST(TracerUnitTest, EmptySlicesReportZeroImbalance) {
  const MachineConfig cfg = MachineConfig::scaled(1);
  Tracer t(cfg, 1, "unused.json", /*slice=*/10);
  t.on_execute(0, 0, 25, 25, 1);  // activity only in slice 2
  const std::vector<double> imb = t.imbalance_series();
  ASSERT_EQ(imb.size(), 3u);
  EXPECT_DOUBLE_EQ(imb[0], 0.0);
  EXPECT_DOUBLE_EQ(imb[1], 0.0);
  EXPECT_GT(imb[2], 0.0);
}

}  // namespace
}  // namespace updown
