// Ctx intrinsics: delayed sends, replies, operand limits, scratchpad
// allocation, program registry errors, service registry.
#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "udweave/context.hpp"

namespace updown {
namespace {

struct CtxApp {
  EventLabel go = 0, tick = 0, reply_target = 0;
  std::vector<std::pair<Word, Tick>> arrivals;  // (tag, start time)
  bool replied = false;
};

struct TCtx : ThreadState {
  void go(Ctx& ctx) {
    auto& app = ctx.machine().user<CtxApp>();
    // Delayed sends arrive in delay order regardless of send order.
    ctx.send_event_delayed(ctx.evw_new(0, app.tick), {2}, IGNRCONT, 5000);
    ctx.send_event_delayed(ctx.evw_new(0, app.tick), {1}, IGNRCONT, 1000);
    ctx.send_event(ctx.evw_new(0, app.tick), {0});
    // send_reply with no continuation is a silent no-op.
    ctx.send_reply({99});
    ctx.yield_terminate();
  }
  void tick(Ctx& ctx) {
    ctx.machine().user<CtxApp>().arrivals.emplace_back(ctx.op(0), ctx.start_time());
    ctx.yield_terminate();
  }
};

TEST(Context, DelayedSendsArriveInDelayOrder) {
  Machine m(MachineConfig::scaled(1));
  auto& app = m.emplace_user<CtxApp>();
  app.go = m.program().event("TCtx::go", &TCtx::go);
  app.tick = m.program().event("TCtx::tick", &TCtx::tick);
  m.send_from_host(evw::make_new(1, app.go), {});
  m.run();
  ASSERT_EQ(app.arrivals.size(), 3u);
  EXPECT_EQ(app.arrivals[0].first, 0u);
  EXPECT_EQ(app.arrivals[1].first, 1u);
  EXPECT_EQ(app.arrivals[2].first, 2u);
  EXPECT_GE(app.arrivals[1].second, app.arrivals[0].second + 900);
  EXPECT_GE(app.arrivals[2].second, app.arrivals[0].second + 4900);
}

struct TMaxOps : ThreadState {
  void go(Ctx& ctx) {
    auto& app = ctx.machine().user<CtxApp>();
    const Word ops[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    ctx.send_eventv(ctx.evw_new(0, app.tick), ops, 8);
    ctx.yield_terminate();
  }
  void tick(Ctx& ctx) {
    EXPECT_EQ(ctx.nops(), 8u);
    EXPECT_EQ(ctx.op(7), 8u);
    ctx.machine().user<CtxApp>().arrivals.emplace_back(ctx.nops(), ctx.start_time());
    ctx.yield_terminate();
  }
};

TEST(Context, EightOperandMessages) {
  Machine m(MachineConfig::scaled(1));
  auto& app = m.emplace_user<CtxApp>();
  app.go = m.program().event("TMaxOps::go", &TMaxOps::go);
  app.tick = m.program().event("TMaxOps::tick", &TMaxOps::tick);
  m.send_from_host(evw::make_new(0, app.go), {});
  m.run();
  ASSERT_EQ(app.arrivals.size(), 1u);
}

struct TSpExhaust : ThreadState {
  void go(Ctx& ctx) {
    // Scratchpad allocation honors alignment and throws on exhaustion.
    const std::uint64_t a = ctx.sp_alloc(10, 8);
    const std::uint64_t b = ctx.sp_alloc(1, 64);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_THROW(ctx.sp_alloc(1ull << 40), std::runtime_error);
    const std::uint64_t mark = ctx.lane().sp_mark();
    ctx.sp_alloc(128);
    ctx.lane().sp_release(mark);
    EXPECT_EQ(ctx.lane().sp_mark(), mark);
    ctx.yield_terminate();
  }
};

TEST(Context, SpMallocAlignmentAndRelease) {
  Machine m(MachineConfig::scaled(1));
  auto& app = m.emplace_user<CtxApp>();
  app.go = m.program().event("TSpExhaust::go", &TSpExhaust::go);
  m.send_from_host(evw::make_new(0, app.go), {});
  m.run();
}

TEST(Program, LabelLookupAndErrors) {
  Machine m(MachineConfig::scaled(1));
  struct T : ThreadState {
    void e(Ctx&) {}
  };
  const EventLabel l = m.program().event("unique::event", &T::e);
  EXPECT_EQ(m.program().label("unique::event"), l);
  EXPECT_THROW(m.program().label("missing"), std::out_of_range);
  EXPECT_THROW(m.program().def(0), std::out_of_range);  // label 0 reserved
  EXPECT_EQ(m.program().def(l).name, "unique::event");
}

TEST(Services, TypedRegistry) {
  Machine m(MachineConfig::scaled(1));
  struct SvcA {
    int x = 1;
  };
  struct SvcB {
    int x = 2;
  };
  EXPECT_FALSE(m.has_service<SvcA>());
  EXPECT_THROW(m.service<SvcA>(), std::logic_error);
  m.add_service<SvcA>();
  m.add_service<SvcB>();
  EXPECT_EQ(m.service<SvcA>().x, 1);
  EXPECT_EQ(m.service<SvcB>().x, 2);
  m.service<SvcA>().x = 42;
  EXPECT_EQ(m.service<SvcA>().x, 42);
}

TEST(Stats, LaneActivityImbalance) {
  std::vector<LaneStats> lanes(4);
  lanes[0].busy_cycles = 100;
  lanes[1].busy_cycles = 100;
  lanes[2].busy_cycles = 100;
  lanes[3].busy_cycles = 500;
  const LaneActivity a = LaneActivity::from(lanes);
  EXPECT_DOUBLE_EQ(a.mean_busy, 200.0);
  EXPECT_EQ(a.max_busy, 500u);
  EXPECT_EQ(a.min_busy, 100u);
  EXPECT_DOUBLE_EQ(a.imbalance(), 2.5);
  EXPECT_EQ(LaneActivity::from({}).imbalance(), 0.0);
}

}  // namespace
}  // namespace updown
